// Command radar-serve boots the protected inference service: one or more
// int8 engines compiled from zoo models, each wrapped in RADAR protection
// with its own request batcher, background scrubber and (by default)
// verified weight-fetch path, all behind the versioned HTTP control
// plane.
//
// Usage:
//
//	radar-serve -model tiny                               # single model
//	radar-serve -model a=tiny -model b=resnet20s          # multi-model
//	            [-addr :8080] [-g 8] [-batch 8] [-batch-latency 2ms]
//	            [-workers N] [-queue 256] [-verify] [-scrub 100ms]
//	            [-scrub-full-every 8] [-scan-workers N] [-jobs 1024]
//	            [-store-dir DIR] [-store-sync 1s] [-correct NAME]
//	            [-debug-addr :6060] [-log-requests]
//
// -model is repeatable; "name=zoo" serves zoo model zoo under name, and a
// bare "zoo" uses the zoo name itself. The tuning flags apply to every
// model (each still gets its own independent queue, workers and scrubber).
//
// -correct NAME (repeatable; "all" covers every model) opts the named
// served model into ECC-corrected recovery: scrub-flagged groups consult
// per-group Hamming check words and single-bit corruption is repaired in
// place instead of zeroed, with the corrected/zeroed split exported as
// radar_groups_corrected_total / radar_groups_zeroed_total.
//
// -store-dir DIR serves every model from an mmap-backed store checkpoint
// DIR/<name>.radar (converted from the trained gob weights on first use):
// the mapped file is the protected DRAM image, a background flusher makes
// scrubber recoveries durable with msync every -store-sync, and shutdown
// syncs and closes every checkpoint, so a restart resumes from the last
// recovered image instead of the original training output.
//
// Endpoints (see the README "Serving" section for curl examples):
//
//	POST   /v1/models/{name}/infer  sync inference
//	POST   /v1/models/{name}/jobs   async job submit → 202 + job ID
//	GET    /v1/jobs/{id}            poll a job
//	DELETE /v1/jobs/{id}            cancel a job
//	GET    /v1/models               hosted models, health, live metrics
//	GET    /v1/metrics              Prometheus text exposition
//	GET    /v1/debug/traces         recent per-request stage timings
//	POST   /v1/admin/scrub          force a scrub cycle now
//	POST   /v1/admin/rekey          rotate protection secrets live
//	POST   /v1/admin/inject         mount an adversary volley (fault drill)
//	POST   /v1/admin/models/{name}  hot-add a zoo model ({"source":"tiny"})
//	DELETE /v1/admin/models/{name}  hot-remove a model
//
// SIGINT/SIGTERM triggers a graceful shutdown: the HTTP listener drains,
// queued requests (including pending jobs) are answered, then the
// scrubbers stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/obs"
	"radar/internal/qinfer"
	"radar/internal/serve"
	"radar/internal/store"
)

// modelFlag collects repeatable -model values ("zoo" or "name=zoo").
type modelFlag []string

func (m *modelFlag) String() string { return strings.Join(*m, ",") }
func (m *modelFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var models modelFlag
	flag.Var(&models, "model", "zoo model to serve: tiny, resnet20s or resnet18s, optionally as name=zoo; repeatable (checkpoints load from testdata/models)")
	var corrects modelFlag
	flag.Var(&corrects, "correct", "served model name whose recovery is ECC-corrected instead of zeroing; repeatable, or \"all\"")
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		g         = flag.Int("g", 8, "RADAR group size (paper: 8 for ResNet-20, 512 for ResNet-18)")
		batch     = flag.Int("batch", 8, "max requests per inference batch")
		batchLat  = flag.Duration("batch-latency", 2*time.Millisecond, "max time a request waits for its batch to fill")
		workers   = flag.Int("workers", 0, "inference workers per model (0 = one per CPU)")
		queue     = flag.Int("queue", 256, "pending-request queue depth per model")
		verify    = flag.Bool("verify", true, "verify each layer's signatures at weight-fetch time (embedded detection)")
		scrub     = flag.Duration("scrub", 100*time.Millisecond, "background scrub interval per model (0 disables)")
		scrubFull = flag.Int("scrub-full-every", 8, "every Nth scrub cycle is a full scan")
		scanWk    = flag.Int("scan-workers", 0, "scan engine worker pool per model (0 = one per CPU)")
		jobs      = flag.Int("jobs", serve.DefaultJobCapacity, "async job table capacity")
		storeDir  = flag.String("store-dir", "", "directory of mmap-backed store checkpoints, one <name>.radar per served model (empty = in-RAM weights)")
		storeSync = flag.Duration("store-sync", time.Second, "store checkpoint dirty-section flush interval (with -store-dir; 0 disables the background flusher)")
		debugAddr = flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (empty disables)")
		logReqs   = flag.Bool("log-requests", false, "log every HTTP request (id, method, path, status, duration) via slog")
	)
	flag.Parse()
	if len(models) == 0 {
		models = modelFlag{"resnet20s"}
	}

	specOf := func(zoo string) (model.Spec, bool) {
		switch zoo {
		case "tiny":
			return model.TinySpec(), true
		case "resnet20s":
			return model.ResNet20sSpec(), true
		case "resnet18s":
			return model.ResNet18sSpec(), true
		}
		return model.Spec{}, false
	}

	// checkpoints tracks every store checkpoint opened for a served model,
	// keyed by serve name; the background flusher and the shutdown path
	// iterate it. Guarded by ckptMu (hot-add runs on request goroutines).
	var (
		ckptMu      sync.Mutex
		checkpoints = map[string]*store.Checkpoint{}
	)

	// buildModel compiles one zoo model into an engine + protector pair
	// under the process-wide tuning flags — shared by startup registration
	// and the hot-add admin route. With -store-dir the bundle's weights
	// are first rebound to the mapped checkpoint DIR/<name>.radar, so the
	// engine and protector are wired to the file-backed image.
	buildModel := func(name, zoo string) (*qinfer.Engine, *core.Protector, serve.Config, error) {
		spec, ok := specOf(zoo)
		if !ok {
			return nil, nil, serve.Config{}, fmt.Errorf("unknown zoo model %q", zoo)
		}
		bundle := model.Load(spec)
		if *storeDir != "" {
			path := filepath.Join(*storeDir, name+".radar")
			if err := os.MkdirAll(*storeDir, 0o755); err != nil {
				return nil, nil, serve.Config{}, fmt.Errorf("store dir: %w", err)
			}
			ckpt, err := model.MapCheckpoint(bundle, path)
			if err != nil {
				return nil, nil, serve.Config{}, fmt.Errorf("map store checkpoint for %q: %w", name, err)
			}
			mode := "mmap"
			if !ckpt.Mapped() {
				mode = "in-RAM fallback"
			}
			log.Printf("model %q weights bound to %s (%.1f MB, %s)", name, path,
				float64(ckpt.WeightBytes())/1e6, mode)
			ckptMu.Lock()
			// Any previous checkpoint under this name is stale — left over
			// from a hot-removed model or a failed add. No live engine can
			// be reading it: startup names register before serving begins,
			// and the hot-add plane reserves the name (409ing duplicates)
			// before this provider path runs, so buildModel never executes
			// while a served model holds views into checkpoints[name].
			if old := checkpoints[name]; old != nil {
				old.Sync()
				old.Close()
			}
			checkpoints[name] = ckpt
			ckptMu.Unlock()
		}
		calib, _ := bundle.Attack.Batch(0, 64)
		eng, err := qinfer.Compile(bundle.Net, bundle.QModel, calib)
		if err != nil {
			return nil, nil, serve.Config{}, fmt.Errorf("compile int8 engine for %q: %w", zoo, err)
		}
		pcfg := core.DefaultConfig(*g)
		pcfg.Workers = *scanWk
		for _, c := range corrects {
			if c == name || c == "all" {
				pcfg.Correct = true
			}
		}
		prot := core.Protect(bundle.QModel, pcfg)
		return eng, prot, serve.Config{
			MaxBatch:       *batch,
			MaxLatency:     *batchLat,
			Workers:        *workers,
			QueueDepth:     *queue,
			VerifiedFetch:  *verify,
			ScrubInterval:  *scrub,
			ScrubFullEvery: *scrubFull,
			InputShape:     []int{spec.Data.Channels, spec.Data.Size, spec.Data.Size},
		}, nil
	}

	// The provider behind POST /v1/admin/models/{name}: the request's
	// source string is a zoo model name, built with the same tuning as the
	// startup -model registrations.
	provider := func(name, source string) (*qinfer.Engine, *core.Protector, []serve.ModelOption, error) {
		eng, prot, cfg, err := buildModel(name, source)
		if err != nil {
			return nil, nil, nil, err
		}
		log.Printf("hot-adding zoo model %q as %q", source, name)
		return eng, prot, []serve.ModelOption{serve.WithConfig(cfg)}, nil
	}

	opts := []serve.ServiceOption{
		serve.WithJobCapacity(*jobs),
		serve.WithModelProvider(provider),
	}
	type hosted struct {
		name string
		spec model.Spec
	}
	var hostedModels []hosted
	for _, mv := range models {
		name, zoo := mv, mv
		if eq := strings.IndexByte(mv, '='); eq >= 0 {
			name, zoo = mv[:eq], mv[eq+1:]
		}
		spec, ok := specOf(zoo)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown zoo model %q in -model %q\n", zoo, mv)
			os.Exit(2)
		}
		log.Printf("loading %s as %q (training on first use; cached under testdata/models)", spec.Name, name)
		eng, prot, cfg, err := buildModel(name, zoo)
		if err != nil {
			log.Fatalf("%v", err)
		}
		recovery := "zeroing"
		if prot.Correcting() {
			recovery = "ECC-corrected"
		}
		log.Printf("model %q: %d layers, %d groups (G=%d, %s recovery)",
			name, len(prot.Model.Layers), prot.NumGroups(), *g, recovery)

		opts = append(opts, serve.WithModel(name, eng, prot, serve.WithConfig(cfg)))
		hostedModels = append(hostedModels, hosted{name: name, spec: spec})
	}

	svc, err := serve.Open(opts...)
	if err != nil {
		log.Fatalf("open service: %v", err)
	}

	// Background flusher: periodically msync the sections recovery (or any
	// other model-API write) dirtied, bounding how much repaired state a
	// crash can lose. Stopped before the final sync at shutdown.
	flusherDone := make(chan struct{})
	stopFlusher := func() {}
	if *storeDir != "" && *storeSync > 0 {
		stop := make(chan struct{})
		stopFlusher = func() { close(stop); <-flusherDone }
		go func() {
			defer close(flusherDone)
			ticker := time.NewTicker(*storeSync)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					ckptMu.Lock()
					for name, c := range checkpoints {
						if err := c.SyncDirty(); err != nil {
							log.Printf("store flush %q: %v", name, err)
						}
					}
					ckptMu.Unlock()
				}
			}
		}()
	} else {
		close(flusherDone)
	}

	var handler http.Handler = svc.Handler()
	if *logReqs {
		handler = serve.LogRequests(handler, slog.Default())
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.PprofHandler()); err != nil && err != http.ErrServerClosed {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		names := make([]string, len(hostedModels))
		for i, h := range hostedModels {
			names[i] = h.name
		}
		log.Printf("serving %d model(s) [%s] on %s — verify=%v scrub=%v jobs=%d",
			len(hostedModels), strings.Join(names, ", "), *addr, *verify, *scrub, *jobs)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	svc.Close()
	// Scrubbers are stopped: make the final weight image durable and
	// release the mappings.
	stopFlusher()
	ckptMu.Lock()
	for name, c := range checkpoints {
		if err := c.Sync(); err != nil {
			log.Printf("store sync %q: %v", name, err)
		}
		c.Close()
	}
	ckptMu.Unlock()
	for _, info := range svc.Models() {
		m := info.Metrics
		log.Printf("model %q: served %d requests in %d batches; scrub cycles %d; rekeys %d; groups flagged %d, recovered %d",
			info.Name, m.Requests, m.Batches, m.ScrubCycles, m.Rekeys, m.GroupsFlagged, m.GroupsRecovered)
	}
}
