// Command radar-train trains (or loads from the checkpoint cache) the
// scaled model zoo used by the experiments and reports clean quantized
// accuracies.
//
// Usage:
//
//	radar-train [-model tiny|resnet20s|resnet18s|all] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"radar/internal/model"
)

func main() {
	which := flag.String("model", "all", "model to train: tiny, resnet20s, resnet18s, or all")
	verbose := flag.Bool("v", false, "log per-epoch training progress")
	flag.Parse()

	specs := map[string]model.Spec{
		"tiny":      model.TinySpec(),
		"resnet20s": model.ResNet20sSpec(),
		"resnet18s": model.ResNet18sSpec(),
	}
	var order []string
	if *which == "all" {
		order = []string{"tiny", "resnet20s", "resnet18s"}
	} else if _, ok := specs[*which]; ok {
		order = []string{*which}
	} else {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *which)
		os.Exit(2)
	}

	for _, name := range order {
		spec := specs[name]
		if *verbose {
			spec.Train.Log = os.Stdout
		}
		t0 := time.Now()
		b := model.Load(spec)
		fmt.Printf("%-10s trained/loaded in %-10v clean quantized accuracy %6.2f%%  (%d weights, %d quantized layers)\n",
			spec.Name, time.Since(t0).Round(time.Millisecond),
			100*b.CleanAccuracy, b.QModel.TotalWeights(), len(b.QModel.Layers))
	}
}
