// Command radar-protect demonstrates the full RADAR round trip on a zoo
// model: protect → attack (PBFA mounted through the rowhammer simulator) →
// run-time scan → zero-out recovery, reporting accuracy at every stage and
// the secure-storage cost.
//
// Usage:
//
//	radar-protect [-model resnet20s] [-g 8] [-flips 10] [-no-interleave] [-sig 2] [-workers 0] [-store PATH]
//
// -workers sizes the parallel scan engine's pool (0 = one per CPU); the
// flagged output is identical for every setting.
//
// -store PATH rebinds the victim's quantized weights to an mmap-backed
// store checkpoint at PATH before protecting: on first use the gob-trained
// weights are converted to the store format, afterwards the file itself is
// the protected DRAM image — the attack flips bits in the mapped file's
// page cache, and recovery's zeroing is made durable with msync before
// exit, so a rerun against the same -store starts from the recovered
// image.
package main

import (
	"flag"
	"fmt"
	"os"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/rowhammer"
)

func main() {
	which := flag.String("model", "resnet20s", "target model: resnet20s or resnet18s")
	g := flag.Int("g", 8, "group size")
	flips := flag.Int("flips", 10, "number of PBFA bit flips")
	noInter := flag.Bool("no-interleave", false, "disable interleaving")
	sig := flag.Int("sig", 2, "signature bits (2 or 3)")
	seed := flag.Int64("seed", 1, "seed for attack batch and secrets")
	workers := flag.Int("workers", 0, "scan worker pool size (0 = one per CPU)")
	storePath := flag.String("store", "", "mmap-backed store checkpoint path (converted from the gob checkpoint on first use; empty = in-RAM weights)")
	flag.Parse()

	var spec model.Spec
	switch *which {
	case "resnet20s":
		spec = model.ResNet20sSpec()
	case "resnet18s":
		spec = model.ResNet18sSpec()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *which)
		os.Exit(2)
	}

	// Attacker derives the profile offline on its own model copy.
	atk := model.Load(spec)
	cfg := attack.DefaultConfig(*seed)
	cfg.NumFlips = *flips
	profile := attack.PBFA(atk.QModel, atk.Attack, cfg)

	// Victim: protected model whose DRAM the attacker hammers. With
	// -store, that DRAM image is the mapped checkpoint file.
	victim := model.Load(spec)
	if *storePath != "" {
		ckpt, err := model.MapCheckpoint(victim, *storePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "map store checkpoint: %v\n", err)
			os.Exit(1)
		}
		mode := "mmap"
		if !ckpt.Mapped() {
			mode = "in-RAM fallback"
		}
		fmt.Printf("weights bound to store checkpoint %s (%.1f MB, %s)\n",
			*storePath, float64(ckpt.WeightBytes())/1e6, mode)
		defer func() {
			// Recovery zeroing marked its layers dirty through the model
			// observer; make it durable before exit.
			if err := ckpt.SyncDirty(); err != nil {
				fmt.Fprintf(os.Stderr, "sync store checkpoint: %v\n", err)
			}
			ckpt.Close()
		}()
	}
	clean := model.Evaluate(victim.Net, victim.Test, 100)
	pcfg := core.Config{G: *g, Interleave: !*noInter, SigBits: *sig, Seed: *seed, Workers: *workers}
	prot := core.Protect(victim.QModel, pcfg)
	st := prot.Storage()
	fmt.Printf("protected %s: G=%d interleave=%v sig=%d-bit scan workers=%d\n",
		spec.Name, *g, !*noInter, *sig, prot.Workers())
	fmt.Printf("secure storage: %.2f KB signatures + %d key bits + %d offset bits (%.2f KB total)\n",
		st.SignatureKB(), st.KeyBits, st.OffsetBits, st.TotalBytes()/1024)

	dram := rowhammer.New(victim.QModel, rowhammer.DefaultGeometry(), *seed)
	mounted := dram.MountProfile(profile.Addresses())
	attacked := model.Evaluate(victim.Net, victim.Test, 100)

	flagged, zeroed := prot.DetectAndRecover()
	detected := prot.CountDetected(profile.Addresses(), flagged)
	recovered := model.Evaluate(victim.Net, victim.Test, 100)

	fmt.Printf("\nrowhammer mounted %d/%d profile bits\n", mounted, len(profile))
	fmt.Printf("scan flagged %d groups; %d/%d flips detected; %d weights zeroed\n",
		len(flagged), detected, len(profile), zeroed)
	fmt.Printf("\naccuracy: clean %.2f%% → attacked %.2f%% → recovered %.2f%%\n",
		100*clean, 100*attacked, 100*recovered)
}
