// Command radar-protect demonstrates the full RADAR round trip on a zoo
// model: protect → attack (PBFA mounted through the rowhammer simulator) →
// run-time scan → zero-out recovery, reporting accuracy at every stage and
// the secure-storage cost.
//
// Usage:
//
//	radar-protect [-model resnet20s] [-g 8] [-flips 10] [-no-interleave] [-sig 2] [-workers 0]
//
// -workers sizes the parallel scan engine's pool (0 = one per CPU); the
// flagged output is identical for every setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/rowhammer"
)

func main() {
	which := flag.String("model", "resnet20s", "target model: resnet20s or resnet18s")
	g := flag.Int("g", 8, "group size")
	flips := flag.Int("flips", 10, "number of PBFA bit flips")
	noInter := flag.Bool("no-interleave", false, "disable interleaving")
	sig := flag.Int("sig", 2, "signature bits (2 or 3)")
	seed := flag.Int64("seed", 1, "seed for attack batch and secrets")
	workers := flag.Int("workers", 0, "scan worker pool size (0 = one per CPU)")
	flag.Parse()

	var spec model.Spec
	switch *which {
	case "resnet20s":
		spec = model.ResNet20sSpec()
	case "resnet18s":
		spec = model.ResNet18sSpec()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *which)
		os.Exit(2)
	}

	// Attacker derives the profile offline on its own model copy.
	atk := model.Load(spec)
	cfg := attack.DefaultConfig(*seed)
	cfg.NumFlips = *flips
	profile := attack.PBFA(atk.QModel, atk.Attack, cfg)

	// Victim: protected model whose DRAM the attacker hammers.
	victim := model.Load(spec)
	clean := model.Evaluate(victim.Net, victim.Test, 100)
	pcfg := core.Config{G: *g, Interleave: !*noInter, SigBits: *sig, Seed: *seed, Workers: *workers}
	prot := core.Protect(victim.QModel, pcfg)
	st := prot.Storage()
	fmt.Printf("protected %s: G=%d interleave=%v sig=%d-bit scan workers=%d\n",
		spec.Name, *g, !*noInter, *sig, prot.Workers())
	fmt.Printf("secure storage: %.2f KB signatures + %d key bits + %d offset bits (%.2f KB total)\n",
		st.SignatureKB(), st.KeyBits, st.OffsetBits, st.TotalBytes()/1024)

	dram := rowhammer.New(victim.QModel, rowhammer.DefaultGeometry(), *seed)
	mounted := dram.MountProfile(profile.Addresses())
	attacked := model.Evaluate(victim.Net, victim.Test, 100)

	flagged, zeroed := prot.DetectAndRecover()
	detected := prot.CountDetected(profile.Addresses(), flagged)
	recovered := model.Evaluate(victim.Net, victim.Test, 100)

	fmt.Printf("\nrowhammer mounted %d/%d profile bits\n", mounted, len(profile))
	fmt.Printf("scan flagged %d groups; %d/%d flips detected; %d weights zeroed\n",
		len(flagged), detected, len(profile), zeroed)
	fmt.Printf("\naccuracy: clean %.2f%% → attacked %.2f%% → recovered %.2f%%\n",
		100*clean, 100*attacked, 100*recovered)
}
