#!/usr/bin/env bash
# Boots radar-serve against the tiny testdata checkpoint and smoke-tests
# the HTTP API: /healthz must report ok, /infer must classify, /metrics
# must count the request. Used by `make serve-smoke` and the CI
# serve-integration job.
set -euo pipefail

BIN=${1:-./radar-serve}
ADDR=127.0.0.1:18080
LOG=$(mktemp)

"$BIN" -model tiny -addr "$ADDR" -scrub 50ms >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; cat "$LOG"' EXIT

# Wait for the server to come up (tiny checkpoint loads in well under 10s).
up=""
for _ in $(seq 1 50); do
    if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "server never came up"; exit 1; }

curl -fs "http://$ADDR/healthz" | grep -q '"ok"' || { echo "healthz not ok"; exit 1; }

# One 3x8x8 input (the tiny spec's shape), all values 0.1.
payload=$(awk 'BEGIN{printf "{\"input\":["; for(i=0;i<192;i++){printf "%s0.1",(i?",":"")}; printf "]}"}')
curl -fs -X POST -d "$payload" "http://$ADDR/infer" | grep -q '"class"' || { echo "infer failed"; exit 1; }

curl -fs "http://$ADDR/metrics" | grep -q '"requests": 1' || { echo "metrics missed the request"; exit 1; }

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
echo "serve smoke OK"
