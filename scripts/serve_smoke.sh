#!/usr/bin/env bash
# Boots radar-serve with TWO models on the tiny testdata checkpoint and
# smoke-tests the v1 HTTP control plane end to end: /v1/models must list
# both models, a sync infer must classify, an async job must round-trip
# submit → poll → done, a second job must cancel via DELETE, an admin
# rekey must answer rekeyed=true, a model must hot-add and hot-remove, an
# injected adversary campaign must land on the right recovery path (model
# a boots with -correct: ECC repairs, zero weights zeroed; model b is
# zeroing-only: groups destroyed), and the removed pre-v1 shims must
# answer 404.
# Used by `make serve-smoke` and the CI serve-integration job.
set -euo pipefail

BIN=${1:-./radar-serve}
ADDR=127.0.0.1:18080
LOG=$(mktemp)

"$BIN" -model a=tiny -model b=tiny -correct a -addr "$ADDR" -scrub 50ms >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; cat "$LOG"' EXIT

# Wait for the service to come up (tiny checkpoints load in well under 10s).
up=""
for _ in $(seq 1 50); do
    if curl -fs "http://$ADDR/v1/models" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "server never came up"; exit 1; }

# Both models are hosted and healthy.
models=$(curl -fs "http://$ADDR/v1/models")
echo "$models" | grep -q '"name": "a"' || { echo "/v1/models missing model a"; exit 1; }
echo "$models" | grep -q '"name": "b"' || { echo "/v1/models missing model b"; exit 1; }
echo "$models" | grep -q '"healthy": true' || { echo "models not healthy"; exit 1; }

# One 3x8x8 input (the tiny spec's shape), all values 0.1.
payload=$(awk 'BEGIN{printf "{\"input\":["; for(i=0;i<192;i++){printf "%s0.1",(i?",":"")}; printf "]}"}')

# Sync inference against model a.
curl -fs -X POST -d "$payload" "http://$ADDR/v1/models/a/infer" | grep -q '"class"' \
    || { echo "v1 sync infer failed"; exit 1; }

# Unknown model names must 404.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$payload" "http://$ADDR/v1/models/nope/infer")
[ "$code" = "404" ] || { echo "unknown model answered $code, want 404"; exit 1; }

# Async job round trip against model b: submit → poll until done.
job=$(curl -fs -X POST -d "$payload" "http://$ADDR/v1/models/b/jobs")
echo "$job" | grep -q '"id"' || { echo "job submit failed: $job"; exit 1; }
jid=$(echo "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$jid" ] || { echo "no job id in: $job"; exit 1; }
done=""
for _ in $(seq 1 50); do
    st=$(curl -fs "http://$ADDR/v1/jobs/$jid")
    if echo "$st" | grep -q '"state": "done"'; then
        echo "$st" | grep -q '"class"' || { echo "done job has no result: $st"; exit 1; }
        done=1
        break
    fi
    sleep 0.1
done
[ -n "$done" ] || { echo "job $jid never completed"; exit 1; }

# Job cancellation: submit another job and DELETE it. Whether it is still
# pending (cancelled) or already finished (done), the DELETE must answer
# 200 and free the slot — a follow-up poll answers 404.
job2=$(curl -fs -X POST -d "$payload" "http://$ADDR/v1/models/b/jobs")
jid2=$(echo "$job2" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$jid2" ] || { echo "second job submit failed: $job2"; exit 1; }
curl -fs -X DELETE "http://$ADDR/v1/jobs/$jid2" | grep -q '"state"' \
    || { echo "job cancel failed"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/jobs/$jid2")
[ "$code" = "404" ] || { echo "cancelled job still polls ($code), want 404"; exit 1; }

# Live admin rekey of model a, then an admin scrub of everything.
curl -fs -X POST -d '{"model":"a"}' "http://$ADDR/v1/admin/rekey" | grep -q '"rekeyed": true' \
    || { echo "admin rekey failed"; exit 1; }
curl -fs -X POST -d '{"full":true}' "http://$ADDR/v1/admin/scrub" | grep -q '"model": "b"' \
    || { echo "admin scrub did not cover both models"; exit 1; }

# Model a must still classify after the rekey.
curl -fs -X POST -d "$payload" "http://$ADDR/v1/models/a/infer" | grep -q '"class"' \
    || { echo "post-rekey infer failed"; exit 1; }

# Hot model add/remove: add model c from the tiny zoo source, infer on
# it, then remove it and watch the routes 404.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"source":"tiny"}' "http://$ADDR/v1/admin/models/c")
[ "$code" = "201" ] || { echo "hot-add answered $code, want 201"; exit 1; }
curl -fs -X POST -d "$payload" "http://$ADDR/v1/models/c/infer" | grep -q '"class"' \
    || { echo "infer on hot-added model failed"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/v1/admin/models/c")
[ "$code" = "204" ] || { echo "hot-remove answered $code, want 204"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$payload" "http://$ADDR/v1/models/c/infer")
[ "$code" = "404" ] || { echo "removed model still serves ($code), want 404"; exit 1; }

# The pre-v1 shims are gone: every legacy route must answer 404.
for route in /infer /healthz /metrics; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR$route")
    [ "$code" = "404" ] || { echo "legacy $route answered $code, want 404"; exit 1; }
done

# Per-model accounting: model a served 2 sync requests (before and after
# the rekey), model b served the async job (the cancelled job never ran or
# was already counted as done; either way requests ≥ 1 and sync count is
# exact for a).
curl -fs "http://$ADDR/v1/models/a" | grep -q '"requests": 2' \
    || { echo "model a request count off"; curl -fs "http://$ADDR/v1/models/a"; exit 1; }
curl -fs "http://$ADDR/v1/models/b" | grep -q '"requests": ' \
    || { echo "model b metrics missing"; curl -fs "http://$ADDR/v1/models/b"; exit 1; }

# Prometheus exposition: the request counter matches the per-model
# accounting, the scrubber has cycled (50ms interval), and the latency
# histogram carries every answered request.
ct=$(curl -fs -o /dev/null -w '%{content_type}' "http://$ADDR/v1/metrics")
echo "$ct" | grep -q 'text/plain' || { echo "/v1/metrics content type: $ct"; exit 1; }
metrics=$(curl -fs "http://$ADDR/v1/metrics")
echo "$metrics" | grep -q '^radar_requests_total{model="a"} 2$' \
    || { echo "radar_requests_total for model a off"; echo "$metrics" | grep radar_requests_total; exit 1; }
scrubs=$(echo "$metrics" | sed -n 's/^radar_scrub_cycles_total{model="a"} //p')
[ -n "$scrubs" ] && [ "$scrubs" -gt 0 ] || { echo "radar_scrub_cycles_total not advancing: '$scrubs'"; exit 1; }
echo "$metrics" | grep -q '^radar_request_latency_seconds_bucket{model="a",le="+Inf"} 2$' \
    || { echo "latency histogram missing model a samples"; exit 1; }
echo "$metrics" | grep -q '^radar_queue_depth{model="a"}' \
    || { echo "queue depth gauge missing"; exit 1; }

# Per-request stage traces: every HTTP infer left a trace with its queue /
# batch / verify / forward split.
traces=$(curl -fs "http://$ADDR/v1/debug/traces?n=8")
for stage in queue batch verify forward; do
    echo "$traces" | grep -q "\"name\": \"$stage\"" \
        || { echo "traces missing stage $stage"; echo "$traces"; exit 1; }
done

# Injected adversary campaigns land on the right recovery path. Model a
# runs ECC-corrected recovery (-correct a survives the earlier rekey): a
# sigstore volley against its golden store is repaired in place — groups
# corrected, nothing zeroed. Model b is zeroing-only: an oblivious weight
# volley gets its flagged groups destroyed.
curl -fs -X POST -d '{"model":"a","adversary":"sigstore","flips":3,"seed":7}' "http://$ADDR/v1/admin/inject" \
    | grep -q '"sig_flips": 3' || { echo "sigstore inject on a failed"; exit 1; }
curl -fs -X POST -d '{"model":"b","adversary":"oblivious","flips":4,"seed":9}' "http://$ADDR/v1/admin/inject" \
    | grep -q '"weight_flips": 4' || { echo "oblivious inject on b failed"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"model":"a","adversary":"bogus","flips":3}' "http://$ADDR/v1/admin/inject")
[ "$code" = "400" ] || { echo "bogus adversary answered $code, want 400"; exit 1; }
curl -fs -X POST -d '{"full":true}' "http://$ADDR/v1/admin/scrub" >/dev/null \
    || { echo "post-inject scrub failed"; exit 1; }
metrics=$(curl -fs "http://$ADDR/v1/metrics")
echo "$metrics" | grep -q '^radar_adversary_flips_total{model="a"} 3$' \
    || { echo "adversary flip counter for a off"; echo "$metrics" | grep radar_adversary; exit 1; }
corrected=$(echo "$metrics" | sed -n 's/^radar_groups_corrected_total{model="a"} //p')
[ -n "$corrected" ] && [ "$corrected" -gt 0 ] || { echo "model a corrected nothing: '$corrected'"; exit 1; }
echo "$metrics" | grep -q '^radar_groups_zeroed_total{model="a"} 0$' \
    || { echo "ECC model a zeroed groups"; echo "$metrics" | grep radar_groups; exit 1; }
zeroed=$(echo "$metrics" | sed -n 's/^radar_groups_zeroed_total{model="b"} //p')
[ -n "$zeroed" ] && [ "$zeroed" -gt 0 ] || { echo "model b zeroed nothing: '$zeroed'"; exit 1; }
echo "$metrics" | grep -q '^radar_groups_corrected_total{model="b"} 0$' \
    || { echo "zeroing-only model b corrected groups"; echo "$metrics" | grep radar_groups; exit 1; }

# Model a's weights were never touched by the sigstore campaign: it must
# still classify.
curl -fs -X POST -d "$payload" "http://$ADDR/v1/models/a/infer" | grep -q '"class"' \
    || { echo "post-inject infer on a failed"; exit 1; }

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
echo "serve smoke OK (2 models, sync + async + cancel + hot add/remove + admin rekey/scrub + adversary inject ECC/zeroing split + metrics/traces, shims gone)"
