#!/bin/sh
# bench_compare.sh [REF] — run the benchmark suite on a base git ref and on
# the working tree, then print a benchstat-style before/after table
# (old ns/op, new ns/op, delta, plus MB/s where reported).
#
# bench_compare.sh --gate [MAX_DROP] — the CI perf-regression gate:
# regenerate the BENCH_*.json artifacts BENCH_RUNS times (default 3) into
# per-run subdirectories and compare them against the committed baselines
# in the repo root, failing (exit 1) when any tracked MB/s or req/s metric
# drops more than MAX_DROP percent (default 10). Each metric is judged on
# its median across the runs, so one noisy regeneration on a loaded host
# cannot flake the gate. A `[bench-skip]` marker anywhere in the last
# commit message skips the gate — the escape hatch for commits that
# knowingly trade throughput. The markdown delta table is printed to
# stdout and, when GITHUB_STEP_SUMMARY is set, appended there too.
#
# The base ref is checked out into a temporary git worktree, so the working
# tree (including uncommitted changes) is never touched. Environment knobs:
#   BENCH  benchmark regexp             (default: Scan|Serve|Conv|Signature)
#   COUNT  -count per side              (default: 3; best-of is compared)
#   PKGS   packages to benchmark        (default: . ./internal/qinfer/)
set -eu

if [ "${1:-}" = "--gate" ]; then
	MAX_DROP=${2:-10}
	root=$(git rev-parse --show-toplevel)
	cd "$root"
	if git log -1 --pretty=%B | grep -qF '[bench-skip]'; then
		echo "perf gate skipped: [bench-skip] in the last commit message"
		if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
			echo "Perf gate skipped (\`[bench-skip]\`)." >> "$GITHUB_STEP_SUMMARY"
		fi
		exit 0
	fi
	# BENCH_OUT keeps the fresh artifacts (CI uploads them); otherwise
	# they live in a scratch directory removed on exit.
	if [ -n "${BENCH_OUT:-}" ]; then
		fresh=$BENCH_OUT
		mkdir -p "$fresh"
	else
		fresh=$(mktemp -d)
		trap 'rm -rf "$fresh"' EXIT
	fi
	RUNS=${BENCH_RUNS:-3}
	freshflags=""
	i=1
	while [ "$i" -le "$RUNS" ]; do
		echo "== regenerating BENCH artifacts into $fresh/run$i ($i/$RUNS) =="
		make bench-artifacts BENCH_OUT="$fresh/run$i"
		freshflags="$freshflags -fresh $fresh/run$i"
		i=$((i + 1))
	done
	# The first run's artifacts double as the uploadable set at the root
	# of BENCH_OUT (CI's artifact glob expects them there).
	cp "$fresh"/run1/BENCH_*.json "$fresh"/
	echo "== gating against committed baselines (max drop ${MAX_DROP}%, median of $RUNS runs) =="
	status=0
	# $freshflags intentionally unquoted: it expands to repeated
	# "-fresh DIR" pairs (mktemp/CI paths carry no spaces).
	go run ./cmd/radar-bench -gate -baseline . $freshflags -max-drop "$MAX_DROP" \
		> "$fresh/gate.md" || status=$?
	cat "$fresh/gate.md"
	if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
		cat "$fresh/gate.md" >> "$GITHUB_STEP_SUMMARY"
	fi
	exit $status
fi

REF=${1:-HEAD~1}
BENCH=${BENCH:-'Scan|Serve|Conv|Signature'}
COUNT=${COUNT:-3}
PKGS=${PKGS:-'. ./internal/qinfer/'}

root=$(git rev-parse --show-toplevel)
cd "$root"
refid=$(git rev-parse --short "$REF")
work=$(mktemp -d)
old_out="$work/old.bench"
new_out="$work/new.bench"
trap 'git worktree remove --force "$work/base" >/dev/null 2>&1 || true; rm -rf "$work"' EXIT

echo "== base: $REF ($refid) =="
git worktree add --detach "$work/base" "$REF" >/dev/null
# Benchmarks need the cached checkpoints; share them with the base tree.
if [ -d testdata ] && [ ! -e "$work/base/testdata" ]; then
	rm -rf "$work/base/testdata"
	ln -s "$root/testdata" "$work/base/testdata"
fi
if ! (cd "$work/base" && go test -run '^$' -bench "$BENCH" -benchtime 1s -count "$COUNT" $PKGS) > "$old_out" 2>"$work/old.err"; then
	echo "error: benchmarks failed on base ref $REF:" >&2
	cat "$work/old.err" >&2
	exit 1
fi
grep -c '^Benchmark' "$old_out" | xargs echo "  benchmarks:"

echo "== head: working tree =="
if ! go test -run '^$' -bench "$BENCH" -benchtime 1s -count "$COUNT" $PKGS > "$new_out" 2>"$work/new.err"; then
	echo "error: benchmarks failed on the working tree:" >&2
	cat "$work/new.err" >&2
	exit 1
fi
grep -c '^Benchmark' "$new_out" | xargs echo "  benchmarks:"

# An empty side would silently skew the awk join below.
[ -s "$old_out" ] && [ -s "$new_out" ] || { echo "error: empty benchmark output" >&2; exit 1; }

echo
awk '
function best(map, name, v) { if (!(name in map) || v < map[name]) map[name] = v }
FNR == 1 { side++ }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) if ($(i+1) == "ns/op") { ns = $i + 0 }
	for (i = 2; i <= NF; i++) if ($(i+1) == "MB/s") { mb = $i + 0 }
	if (side == 1) { best(oldNs, name, ns); if (mb) { if (!(name in oldMb) || mb > oldMb[name]) oldMb[name] = mb } }
	else          { best(newNs, name, ns); if (mb) { if (!(name in newMb) || mb > newMb[name]) newMb[name] = mb }
	                if (!(name in seen)) { order[++n] = name; seen[name] = 1 } }
	mb = 0
}
END {
	printf "%-52s %14s %14s %9s %10s\n", "benchmark (best of runs)", "old ns/op", "new ns/op", "delta", "new MB/s"
	for (i = 1; i <= n; i++) {
		name = order[i]
		if (!(name in oldNs)) { printf "%-52s %14s %14.0f %9s %10s\n", name, "-", newNs[name], "new", newMb[name] ? sprintf("%.0f", newMb[name]) : ""; continue }
		d = (oldNs[name] - newNs[name]) / oldNs[name] * 100
		printf "%-52s %14.0f %14.0f %+8.1f%% %10s\n", name, oldNs[name], newNs[name], d, (name in newMb) ? sprintf("%.0f", newMb[name]) : ""
	}
}' "$old_out" "$new_out"
