#!/usr/bin/env bash
# Boots THREE radar-serve replicas (each hosting the same two tiny
# models) behind one radar-fleet router and smoke-tests the routed
# control plane end to end: the merged /v1/models listing, routed sync
# inference, a sticky async job round trip with cancellation, a broadcast
# hot add/remove, killing one replica mid-run (traffic must keep
# flowing), and a zero-downtime rolling rekey.
# Used by `make fleet-smoke` and the CI fleet-integration job.
set -euo pipefail

SERVE_BIN=${1:-./radar-serve}
FLEET_BIN=${2:-./radar-fleet}
BASE_PORT=18180
FLEET_ADDR=127.0.0.1:18190
LOGDIR=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    cat "$LOGDIR"/*.log 2>/dev/null || true
}
trap cleanup EXIT

# Three replicas, same model set on each.
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    "$SERVE_BIN" -model a=tiny -model b=tiny -addr "127.0.0.1:$port" -scrub 50ms \
        >"$LOGDIR/serve$i.log" 2>&1 &
    PIDS+=($!)
done
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    up=""
    for _ in $(seq 1 50); do
        if curl -fs "http://127.0.0.1:$port/v1/models" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.2
    done
    [ -n "$up" ] || { echo "replica $i never came up"; exit 1; }
done

# The router, probing fast so the kill below is noticed quickly.
"$FLEET_BIN" -replica "http://127.0.0.1:$BASE_PORT" \
             -replica "http://127.0.0.1:$((BASE_PORT + 1))" \
             -replica "http://127.0.0.1:$((BASE_PORT + 2))" \
             -addr "$FLEET_ADDR" -health-interval 100ms -drain-wait 100ms \
             >"$LOGDIR/fleet.log" 2>&1 &
PIDS+=($!)
up=""
for _ in $(seq 1 50); do
    if curl -fs "http://$FLEET_ADDR/v1/fleet" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "fleet router never came up"; exit 1; }

# Merged listing: both models present, each annotated with its ring owner.
models=$(curl -fs "http://$FLEET_ADDR/v1/models")
echo "$models" | grep -q '"name": "a"' || { echo "merged listing missing model a"; exit 1; }
echo "$models" | grep -q '"name": "b"' || { echo "merged listing missing model b"; exit 1; }
echo "$models" | grep -q '"owner"' || { echo "merged listing lacks owners"; exit 1; }

# One 3x8x8 input (the tiny spec's shape), all values 0.1.
payload=$(awk 'BEGIN{printf "{\"input\":["; for(i=0;i<192;i++){printf "%s0.1",(i?",":"")}; printf "]}"}')

# Routed sync inference on both models.
for m in a b; do
    curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/$m/infer" | grep -q '"class"' \
        || { echo "routed sync infer on $m failed"; exit 1; }
done

# Sticky async job round trip: submit through the fleet, poll through the
# fleet (only the minting replica can answer), then cancel a second one.
job=$(curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/a/jobs")
jid=$(echo "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$jid" ] || { echo "routed job submit failed: $job"; exit 1; }
done=""
for _ in $(seq 1 50); do
    st=$(curl -fs "http://$FLEET_ADDR/v1/jobs/$jid")
    if echo "$st" | grep -q '"state": "done"'; then done=1; break; fi
    sleep 0.1
done
[ -n "$done" ] || { echo "routed job $jid never completed"; exit 1; }
job2=$(curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/b/jobs")
jid2=$(echo "$job2" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
curl -fs -X DELETE "http://$FLEET_ADDR/v1/jobs/$jid2" | grep -q '"state"' \
    || { echo "routed job cancel failed"; exit 1; }

# Broadcast hot-add: model c appears on every replica, serves through the
# fleet, then broadcast hot-remove takes it back out everywhere.
curl -fs -X POST -d '{"source":"tiny"}' "http://$FLEET_ADDR/v1/admin/models/c" \
    | grep -q '"op": "add-model"' || { echo "broadcast hot-add failed"; exit 1; }
for i in 0 1 2; do
    curl -fs "http://127.0.0.1:$((BASE_PORT + i))/v1/models" | grep -q '"name": "c"' \
        || { echo "replica $i missing hot-added model c"; exit 1; }
done
curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/c/infer" | grep -q '"class"' \
    || { echo "routed infer on hot-added model failed"; exit 1; }
curl -fs -X DELETE "http://$FLEET_ADDR/v1/admin/models/c" \
    | grep -q '"op": "remove-model"' || { echo "broadcast hot-remove failed"; exit 1; }

# Kill replica 2 and keep the traffic coming: every request must still be
# answered (the router ejects the dead replica on first contact and
# retries on the next ring owner).
kill -9 "${PIDS[2]}" 2>/dev/null || true
wait "${PIDS[2]}" 2>/dev/null || true
fails=0
for n in $(seq 1 20); do
    m=$([ $((n % 2)) = 0 ] && echo a || echo b)
    curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/$m/infer" | grep -q '"class"' \
        || fails=$((fails + 1))
done
[ "$fails" = "0" ] || { echo "$fails/20 requests failed after replica kill"; exit 1; }

# The router noticed: two replicas left in the ring.
sleep 0.5
curl -fs "http://$FLEET_ADDR/v1/fleet" | grep -q '"in_ring": 2' \
    || { echo "fleet did not eject the killed replica"; curl -fs "http://$FLEET_ADDR/v1/fleet"; exit 1; }

# Zero-downtime rolling rekey across the survivors, then traffic still flows.
rekey=$(curl -fs -X POST -d '{}' "http://$FLEET_ADDR/v1/admin/rekey")
echo "$rekey" | grep -q '"op": "rolling-rekey"' || { echo "rolling rekey failed: $rekey"; exit 1; }
live=$(echo "$rekey" | grep -c '"status": 200') || true
[ "$live" = "2" ] || { echo "rolling rekey reached $live replicas, want 2"; exit 1; }
curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/a/infer" | grep -q '"class"' \
    || { echo "post-rekey routed infer failed"; exit 1; }

# One scrape sees the whole fleet: the router's own series plus every
# surviving replica's exposition re-emitted under a replica="host" label.
metrics=$(curl -fs "http://$FLEET_ADDR/v1/metrics")
echo "$metrics" | grep -q '^radar_fleet_replica_up{replica="' \
    || { echo "router metrics missing replica-up gauges"; exit 1; }
echo "$metrics" | grep -q '^radar_fleet_requests_total{route="' \
    || { echo "router metrics missing per-route counters"; exit 1; }
echo "$metrics" | grep -Eq '^radar_requests_total\{replica="[^"]+",model="a"\} [1-9]' \
    || { echo "no replica-labelled request counter for model a"; echo "$metrics" | grep radar_requests_total; exit 1; }
echo "$metrics" | grep -Eq '^radar_scrub_cycles_total\{replica="[^"]+",model="a"\} [1-9]' \
    || { echo "no replica-labelled scrub counter"; exit 1; }
echo "$metrics" | grep -q '^radar_request_latency_seconds_bucket{replica="' \
    || { echo "no replica-labelled latency histogram"; exit 1; }

# Fleet-wide stage traces: the router merges per-replica traces, each
# carrying its queue / batch / verify / forward split.
traces=$(curl -fs "http://$FLEET_ADDR/v1/debug/traces?n=5")
for stage in queue batch verify forward; do
    echo "$traces" | grep -q "\"name\": \"$stage\"" \
        || { echo "merged traces missing stage $stage"; echo "$traces"; exit 1; }
done
echo "$traces" | grep -q '"replica": "' || { echo "merged traces lack replica tags"; exit 1; }

for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
trap - EXIT
rm -rf "$LOGDIR"
echo "fleet smoke OK (3 replicas: routing + sticky jobs + broadcast add/remove + replica kill + rolling rekey + aggregated metrics/traces)"
