#!/usr/bin/env bash
# Boots THREE radar-serve replicas, puts a fault-injecting radar-chaos
# proxy in front of each, routes through radar-fleet, and smoke-tests the
# self-healing stack end to end:
#
#   1. clean routed traffic through passthrough proxies;
#   2. a reconciliation drill — one replica is made unreachable (its proxy
#      resets every connection), a model is hot-added fleet-wide while it
#      is out, and on readmission the fleet must repair the replica's
#      hosted set before putting it back in the ring;
#   3. a gray-failure storm — every proxy injects hangs, TCP resets and
#      5xx — through which ≥99% of 200 routed inferences must succeed.
#
# Used by `make chaos-smoke` and the CI chaos-integration job.
set -euo pipefail

SERVE_BIN=${1:-./radar-serve}
FLEET_BIN=${2:-./radar-fleet}
CHAOS_BIN=${3:-./radar-chaos}
BASE_PORT=18280
CHAOS_PORT=18290
FLEET_ADDR=127.0.0.1:18299
LOGDIR=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    cat "$LOGDIR"/*.log 2>/dev/null || true
}
trap cleanup EXIT

# Three replicas, same model set on each, plus a chaos proxy in front of
# each (passthrough until told otherwise).
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    "$SERVE_BIN" -model a=tiny -model b=tiny -addr "127.0.0.1:$port" -scrub 50ms \
        >"$LOGDIR/serve$i.log" 2>&1 &
    PIDS+=($!)
done
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    up=""
    for _ in $(seq 1 50); do
        if curl -fs "http://127.0.0.1:$port/v1/models" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.2
    done
    [ -n "$up" ] || { echo "replica $i never came up"; exit 1; }
    "$CHAOS_BIN" -addr "127.0.0.1:$((CHAOS_PORT + i))" \
        -target "http://127.0.0.1:$port" -seed $((i + 1)) \
        >"$LOGDIR/chaos$i.log" 2>&1 &
    PIDS+=($!)
done
for i in 0 1 2; do
    up=""
    for _ in $(seq 1 50); do
        if curl -fs "http://127.0.0.1:$((CHAOS_PORT + i))/chaos/stats" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.2
    done
    [ -n "$up" ] || { echo "chaos proxy $i never came up"; exit 1; }
done

# The router sees only the chaos proxies. Tight self-healing knobs: short
# attempt deadline, fast probes, fast jittered failover.
"$FLEET_BIN" -replica "http://127.0.0.1:$CHAOS_PORT" \
             -replica "http://127.0.0.1:$((CHAOS_PORT + 1))" \
             -replica "http://127.0.0.1:$((CHAOS_PORT + 2))" \
             -addr "$FLEET_ADDR" -health-interval 100ms -drain-wait 100ms \
             -attempt-timeout 500ms -backoff-base 5ms -backoff-max 50ms \
             >"$LOGDIR/fleet.log" 2>&1 &
PIDS+=($!)
up=""
for _ in $(seq 1 50); do
    if curl -fs "http://$FLEET_ADDR/v1/fleet" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "fleet router never came up"; exit 1; }

# One 3x8x8 input (the tiny spec's shape), all values 0.1.
payload=$(awk 'BEGIN{printf "{\"input\":["; for(i=0;i<192;i++){printf "%s0.1",(i?",":"")}; printf "]}"}')

# Phase 1: clean routed inference through the passthrough proxies.
for m in a b; do
    curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/$m/infer" | grep -q '"class"' \
        || { echo "routed sync infer on $m failed"; exit 1; }
done

# Phase 2: reconciliation drill. Replica 2 goes dark (its proxy resets
# every connection), a hot-add lands fleet-wide while it is out, and the
# fleet must repair the stale hosted set before readmitting it.
curl -fs -X POST -d '{"reset":1}' "http://127.0.0.1:$((CHAOS_PORT + 2))/chaos/config" >/dev/null \
    || { echo "could not switch proxy 2 to reset"; exit 1; }
ejected=""
for _ in $(seq 1 100); do
    # Keep a trickle of traffic flowing so the data plane notices fast.
    curl -fs -m 3 -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/a/infer" >/dev/null 2>&1 || true
    if curl -fs "http://$FLEET_ADDR/v1/fleet" | grep -q '"in_ring": 2'; then ejected=1; break; fi
    sleep 0.1
done
[ -n "$ejected" ] || { echo "fleet never ejected the dark replica"; curl -fs "http://$FLEET_ADDR/v1/fleet"; exit 1; }

# Hot-add model c while replica 2 is unreachable: the broadcast reaches
# replicas 0 and 1 and records the intent for the missing one.
curl -fs -X POST -d '{"source":"tiny"}' "http://$FLEET_ADDR/v1/admin/models/c" \
    | grep -q '"op": "add-model"' || { echo "broadcast hot-add failed"; exit 1; }
curl -fs "http://127.0.0.1:$((BASE_PORT + 2))/v1/models" | grep -q '"name": "c"' \
    && { echo "dark replica received the broadcast it should have missed"; exit 1; }

# Lift the fault; the prober must reconcile the drift (add c) and only
# then readmit replica 2.
curl -fs -X POST -d '{}' "http://127.0.0.1:$((CHAOS_PORT + 2))/chaos/config" >/dev/null \
    || { echo "could not reset proxy 2 to passthrough"; exit 1; }
readmitted=""
for _ in $(seq 1 100); do
    if curl -fs "http://$FLEET_ADDR/v1/fleet" | grep -q '"in_ring": 3'; then readmitted=1; break; fi
    sleep 0.1
done
[ -n "$readmitted" ] || { echo "dark replica never readmitted"; curl -fs "http://$FLEET_ADDR/v1/fleet"; exit 1; }
curl -fs "http://127.0.0.1:$((BASE_PORT + 2))/v1/models" | grep -q '"name": "c"' \
    || { echo "readmitted replica missing reconciled model c"; exit 1; }
curl -fs -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/c/infer" | grep -q '"class"' \
    || { echo "routed infer on reconciled model failed"; exit 1; }
echo "reconciliation drill OK (eject → fleet-wide hot-add → repair on readmission)"

# Phase 3: gray-failure storm. Every proxy now mixes hangs (held up to
# 1s, cut short by the router's 500ms attempt deadline), TCP resets and
# injected 502s; the client must still see ≥99% success over 200 routed
# inferences.
for i in 0 1 2; do
    curl -fs -X POST -d '{"hang":0.02,"reset":0.02,"err5xx":0.02,"hang_for":1000000000}' \
        "http://127.0.0.1:$((CHAOS_PORT + i))/chaos/config" >/dev/null \
        || { echo "could not arm chaos proxy $i"; exit 1; }
done
total=200
ok=0
for n in $(seq 1 $total); do
    m=$([ $((n % 2)) = 0 ] && echo a || echo b)
    if curl -fs -m 5 -X POST -d "$payload" "http://$FLEET_ADDR/v1/models/$m/infer" 2>/dev/null | grep -q '"class"'; then
        ok=$((ok + 1))
    fi
done
[ "$ok" -ge $((total * 99 / 100)) ] \
    || { echo "chaos storm: only $ok/$total requests succeeded, want ≥99%"; curl -fs "http://$FLEET_ADDR/v1/fleet"; exit 1; }

# The storm was real: the proxies actually injected faults.
injected=0
for i in 0 1 2; do
    stats=$(curl -fs "http://127.0.0.1:$((CHAOS_PORT + i))/chaos/stats")
    n=$(echo "$stats" | tr ',{}' '\n' | grep -Ev '"none"' | grep -Eo ':[0-9]+' | tr -d : | awk '{s+=$1} END{print s+0}')
    injected=$((injected + n))
done
[ "$injected" -gt 0 ] || { echo "chaos proxies injected no faults — storm was a no-op"; exit 1; }

for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
trap - EXIT
rm -rf "$LOGDIR"
echo "chaos smoke OK ($ok/$total through the storm; $injected faults injected; reconciliation drill passed)"
