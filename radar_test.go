package radar_test

import (
	"math/rand"
	"testing"

	"radar"
	"radar/internal/nn"
)

// TestFacadeRoundTrip exercises the public API end to end exactly as the
// README quickstart does.
func TestFacadeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.BuildResNet(nn.ResNet20Config(4, 10), rng)
	qm := radar.Quantize(net)
	if qm.TotalWeights() == 0 {
		t.Fatal("no weights quantized")
	}
	prot := radar.Protect(qm, radar.DefaultConfig(16))
	if flagged := prot.Scan(); len(flagged) != 0 {
		t.Fatalf("clean model flagged: %v", flagged)
	}
	addr := radar.BitAddress{LayerIndex: 1, WeightIndex: 5, Bit: 7}
	qm.FlipBit(addr)
	flagged, zeroed := prot.DetectAndRecover()
	if len(flagged) != 1 || zeroed == 0 {
		t.Fatalf("detect/recover failed: flagged=%v zeroed=%d", flagged, zeroed)
	}
	if again := prot.Scan(); len(again) != 0 {
		t.Fatalf("post-recovery scan not clean: %v", again)
	}
}

func TestFacadeDefaultConfig(t *testing.T) {
	cfg := radar.DefaultConfig(512)
	if cfg.G != 512 || !cfg.Interleave || cfg.SigBits != 2 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
}

func TestFacadeStoragePlanning(t *testing.T) {
	// Capacity planning without a model: paper's ResNet-18 number.
	weights := make([]int, 0, 43)
	total := 0
	for total < 11_689_512 {
		w := 272_000
		if total+w > 11_689_512 {
			w = 11_689_512 - total
		}
		weights = append(weights, w)
		total += w
	}
	st := radar.StorageForWeights(weights, 512, 2, true)
	kb := st.SignatureKB()
	if kb < 5.4 || kb > 5.8 {
		t.Fatalf("storage %.2f KB, want ≈5.6", kb)
	}
}

func TestFacadeSealUnseal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.BuildResNet(nn.ResNet20Config(4, 10), rng)
	qm := radar.Quantize(net)
	prot := radar.Protect(qm, radar.DefaultConfig(8))
	store := prot.Seal()
	if store.Size() == 0 {
		t.Fatal("empty sealed store")
	}
}
