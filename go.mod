module radar

go 1.24
