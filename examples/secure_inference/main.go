// Secure inference: RADAR embedded in the serving loop. Weights live in a
// simulated DRAM under rowhammer attack; before each inference batch the
// runtime scans the layers it is about to use and repairs anything
// corrupted since the last scan — the paper's run-time deployment model
// (§IV: "detection has to be performed on all weights that are loaded into
// cache prior to processing").
package main

import (
	"fmt"

	"radar"
	"radar/internal/attack"
	"radar/internal/model"
	"radar/internal/rowhammer"
)

func main() {
	victim := model.Load(model.ResNet20sSpec())
	prot := radar.Protect(victim.QModel, radar.DefaultConfig(4))
	dram := rowhammer.New(victim.QModel, rowhammer.DefaultGeometry(), 1)

	// The attacker prepared a profile offline and hammers a few bits
	// between inference batches.
	atk := model.Load(model.ResNet20sSpec())
	cfg := attack.DefaultConfig(3)
	cfg.NumFlips = 9
	profile := attack.PBFA(atk.QModel, atk.Attack, cfg)

	batches := 3
	perBatch := len(profile) / batches
	for batch := 0; batch < batches; batch++ {
		// Attacker strikes while the previous batch was computing.
		lo, hi := batch*perBatch, (batch+1)*perBatch
		if batch == batches-1 {
			hi = len(profile)
		}
		mounted := dram.MountProfile(profile[lo:hi].Addresses())

		// Runtime: scan embedded in the weight fetch, recover, then serve.
		flagged, zeroed := prot.DetectAndRecover()
		x, labels := victim.Test.Batch(batch*100, (batch+1)*100)
		out := victim.Net.Forward(x, false)
		correct := 0
		for i := range labels {
			if out.Argmax(i*out.Shape[1], out.Shape[1]) == labels[i] {
				correct++
			}
		}
		fmt.Printf("batch %d: attacker mounted %d flips; scan flagged %d groups, zeroed %d weights; batch accuracy %d%%\n",
			batch+1, mounted, len(flagged), zeroed, correct)
	}
}
