// Fleet routing in one process: three protected inference services (each
// hosting the same two tiny models) come up on loopback listeners behind
// a radar-fleet consistent-hash router. Traffic routed through the fleet
// lands on each model's ring owner; killing one replica mid-run ejects it
// and remaps its models to the survivors without dropping a request; a
// rolling rekey then rotates every surviving replica's protection
// secrets one at a time while traffic keeps flowing.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"radar/internal/core"
	"radar/internal/fleet"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

func tinyModel() (*qinfer.Engine, *core.Protector, []int) {
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		panic(err)
	}
	x, _ := b.Test.Batch(0, 1)
	return eng, core.Protect(b.QModel, core.DefaultConfig(8)), x.Shape[1:]
}

func main() {
	// Three replicas, each hosting the same two protected models.
	const nReplicas = 3
	names := []string{"alpha", "beta"}
	var (
		servers  []*httptest.Server
		services []*serve.Service
		urls     []string
		shape    []int
	)
	for r := 0; r < nReplicas; r++ {
		opts := []serve.ServiceOption{}
		for _, name := range names {
			eng, prot, sh := tinyModel()
			shape = sh
			opts = append(opts, serve.WithModel(name, eng, prot,
				serve.WithScrub(5*time.Millisecond, 8)))
		}
		svc, err := serve.Open(opts...)
		if err != nil {
			panic(err)
		}
		services = append(services, svc)
		ts := httptest.NewServer(svc.Handler())
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	defer func() {
		for i := range servers {
			servers[i].Close()
			services[i].Close()
		}
	}()

	fl, err := fleet.New(fleet.Config{
		Replicas:       urls,
		HealthInterval: 50 * time.Millisecond,
		DrainWait:      50 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fl.Start()
	defer fl.Stop()
	front := httptest.NewServer(fl.Handler())
	defer front.Close()

	for _, name := range names {
		fmt.Printf("model %-5s → ring owner %s\n", name, fl.Ring().Lookup(name))
	}

	// One routed inference per model.
	b := model.Load(model.TinySpec())
	x, _ := b.Test.Batch(0, 1)
	body, _ := json.Marshal(serve.InferRequest{
		Input: x.Data[:tensor.Volume(shape)], Shape: shape,
	})
	infer := func(name string) error {
		resp, err := http.Post(front.URL+"/v1/models/"+name+"/infer",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var ir serve.InferResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			return err
		}
		fmt.Printf("routed infer %-5s → class %d\n", name, ir.Results[0].Class)
		return nil
	}
	for _, name := range names {
		if err := infer(name); err != nil {
			panic(err)
		}
	}

	// Kill the last replica mid-run: the router ejects it on first contact
	// and the survivors pick up its models.
	fmt.Println("\nkilling one replica…")
	servers[nReplicas-1].CloseClientConnections()
	servers[nReplicas-1].Close()
	ok := 0
	for i := 0; i < 10; i++ {
		if infer(names[i%len(names)]) == nil {
			ok++
		}
	}
	// Give the prober a couple of intervals to confirm the ejection (a
	// replica that was never routed to is only discovered by probing).
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("after the kill: %d/10 routed requests succeeded, ring has %d/%d replicas\n",
		ok, len(fl.Ring().Members()), nReplicas)

	// Rolling rekey across the survivors, traffic-safe by construction:
	// each replica is drained off the ring before its exclusive window.
	resp, err := http.Post(front.URL+"/v1/admin/rekey", "application/json",
		bytes.NewReader([]byte("{}")))
	if err != nil {
		panic(err)
	}
	var ar fleet.AdminResponse
	json.NewDecoder(resp.Body).Decode(&ar)
	resp.Body.Close()
	rekeyed := 0
	for _, rep := range ar.Replicas {
		if rep.Err == "" && rep.Status == http.StatusOK {
			rekeyed++
		}
	}
	fmt.Printf("rolling rekey: %d/%d live replicas rekeyed\n", rekeyed, len(fl.Ring().Members()))
	if err := infer(names[0]); err != nil {
		panic(err)
	}
	fmt.Println("fleet example done")
}
