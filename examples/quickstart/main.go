// Quickstart: protect a quantized model with RADAR, corrupt a weight bit
// the way a rowhammer attacker would, detect the corruption at "run time"
// and recover by zeroing the flagged group.
package main

import (
	"fmt"
	"math/rand"

	"radar"
	"radar/internal/nn"
)

func main() {
	// Build and quantize a small network (any trained model works; the
	// quantizer snaps conv/linear weights onto an int8 grid).
	rng := rand.New(rand.NewSource(1))
	net := nn.BuildResNet(nn.ResNet20Config(4, 10), rng)
	qm := radar.Quantize(net)
	fmt.Printf("quantized %d weights across %d layers\n", qm.TotalWeights(), len(qm.Layers))

	// Protect: compute 2-bit golden signatures over interleaved, masked
	// groups of 16 weights. The signatures, keys and offsets are the only
	// state that must live in secure on-chip memory.
	prot := radar.Protect(qm, radar.DefaultConfig(16))
	st := prot.Storage()
	fmt.Printf("secure storage: %.2f KB of signatures (+%d key bits)\n", st.SignatureKB(), st.KeyBits)

	// Adversary: flip the MSB of a weight in DRAM (the PBFA pattern —
	// a small weight becomes a huge one).
	target := radar.BitAddress{LayerIndex: 3, WeightIndex: 42, Bit: 7}
	before, after := qm.FlipBit(target)
	fmt.Printf("attacker flipped %v: %d → %d\n", target, before, after)

	// Run-time scan: recompute signatures, compare with golden, zero out
	// the corrupted group.
	flagged, zeroed := prot.DetectAndRecover()
	fmt.Printf("scan flagged %d group(s); recovery zeroed %d weights\n", len(flagged), zeroed)

	// The model is clean again: a fresh scan reports nothing.
	if len(prot.Scan()) == 0 {
		fmt.Println("post-recovery scan: clean")
	}
}
