// Tradeoff sweep: the Fig 6 / Table V design-space exploration. For each
// group size, report the secure-storage cost of RADAR's signatures on the
// full-size ResNet-20/ResNet-18 (where the paper's KB numbers live), the
// simulated detection time against CRC baselines, and the recovered
// accuracy measured on the scaled trained model.
package main

import (
	"fmt"

	"radar"
	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/exp"
	"radar/internal/memsim"
	"radar/internal/model"
)

func main() {
	cm := memsim.DefaultCostModel()
	full := model.ResNet20CIFARShapes()
	var weights []int
	for _, l := range full.Layers {
		weights = append(weights, l.Weights)
	}

	// One PBFA profile drives the accuracy column.
	atk := model.Load(model.ResNet20sSpec())
	profile := attack.PBFA(atk.QModel, atk.Attack, attack.DefaultConfig(11))

	fmt.Println("ResNet-20 design space (accuracy on scaled model, storage/time on full-size):")
	fmt.Printf("%-8s %-12s %-14s %-14s %-12s\n", "G", "storage", "RADAR Δt", "CRC-7 Δt", "recovered")
	for _, g := range []int{4, 8, 16, 32, 64} {
		st := radar.StorageForWeights(weights, g, 2, true)
		rt := cm.SimulateRADAR(full, memsim.RADARConfig{G: g, Interleave: true, SigBits: 2})
		ct := cm.SimulateCRC(full, g)

		victim := model.Load(model.ResNet20sSpec())
		prot := core.Protect(victim.QModel, core.DefaultConfig(exp.ScaledG(exp.ModelRN20, g)))
		for _, f := range profile {
			victim.QModel.FlipBit(f.Addr)
		}
		prot.DetectAndRecover()
		acc := model.Evaluate(victim.Net, victim.Test, 100)

		fmt.Printf("%-8d %-12s %-14s %-14s %-12s\n",
			g,
			fmt.Sprintf("%.2f KB", st.SignatureKB()),
			fmt.Sprintf("%.2f ms", 1000*rt.DetectionSec),
			fmt.Sprintf("%.2f ms", 1000*ct.DetectionSec),
			fmt.Sprintf("%.2f%%", 100*acc))
	}
}
