// Serving under fire: the protected inference server handling concurrent
// traffic while a rowhammer adversary repeatedly mounts an MSB-flip
// profile against the live weight image. The batcher coalesces requests,
// the verified weight-fetch path re-checks written layers right before
// their convs execute, and the background scrubber sweeps up anything the
// fetch path has not touched yet — traffic never stops, and every attack
// round is detected and recovered.
package main

import (
	"fmt"
	"sync"
	"time"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/rowhammer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

func main() {
	victim := model.Load(model.ResNet20sSpec())
	calib, _ := victim.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(victim.Net, victim.QModel, calib)
	if err != nil {
		panic(err)
	}
	prot := core.Protect(victim.QModel, core.DefaultConfig(8))

	cfg := serve.DefaultConfig()
	cfg.ScrubInterval = 5 * time.Millisecond
	srv := serve.New(eng, prot, cfg)
	srv.Start()
	defer srv.Stop()

	// The adversary prepared a profile offline on its own copy of the
	// model (white-box assumption) and mounts it through simulated DRAM.
	attacker := model.Load(model.ResNet20sSpec())
	acfg := attack.DefaultConfig(3)
	acfg.NumFlips = 9
	profile := attack.PBFA(attacker.QModel, attacker.Attack, acfg)
	dram := rowhammer.New(victim.QModel, rowhammer.DefaultGeometry(), 1)

	// Traffic: four clients, each streaming single-image requests.
	x, labels := victim.Test.Batch(0, 200)
	vol := tensor.Volume(x.Shape[1:])
	input := func(i int) *tensor.Tensor {
		t := tensor.New(x.Shape[1:]...)
		copy(t.Data, x.Data[i*vol:(i+1)*vol])
		return t
	}

	var correct, total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				res, err := srv.Infer(input(i % 200))
				if err != nil {
					return
				}
				mu.Lock()
				total++
				if res.Class == labels[i%200] {
					correct++
				}
				mu.Unlock()
			}
		}(c)
	}

	// Three attack rounds, 30ms apart, against the serving model.
	for round := 1; round <= 3; round++ {
		time.Sleep(30 * time.Millisecond)
		srv.Inject(func(m *quant.Model) {
			dram.MountProfile(profile.Addresses())
			dram.Refresh()
		})
		fmt.Printf("round %d: mounted %d flips against the live server\n",
			round, len(profile.Addresses()))
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap := srv.Snapshot()
	mu.Lock()
	acc := float64(correct) / float64(total)
	mu.Unlock()
	fmt.Printf("\nserved %d requests in %d batches (avg batch %.1f) — accuracy under attack %.1f%% (clean %s)\n",
		snap.Requests, snap.Batches, snap.AvgBatch, 100*acc, victim.MustClean())
	fmt.Printf("scrubber: %d cycles, flagged %d, zeroed %d weights\n",
		snap.ScrubCycles, snap.ScrubFlagged, snap.ScrubZeroed)
	fmt.Printf("verified fetch: %d cache hits, %d rescans, flagged %d\n",
		snap.VerifyHits, snap.VerifyScans, snap.VerifyFlagged)
	fmt.Printf("protector totals: %d scans, %d groups flagged, %d recovered, %d weights zeroed\n",
		snap.ProtectorScans, snap.GroupsFlagged, snap.GroupsRecovered, snap.WeightsZeroed)

	if flagged, _ := prot.DetectAndRecover(); len(flagged) == 0 {
		fmt.Println("final sweep: model clean — every attack round was recovered without stopping traffic")
	} else {
		fmt.Printf("final sweep flagged %d groups (now recovered)\n", len(flagged))
	}
}
