// Serving under fire, v1 edition: one protected inference service hosting
// two models — the ResNet-20 substitute and the tiny CNN — while a
// rowhammer adversary repeatedly mounts an MSB-flip profile against the
// live ResNet-20 weight image. Concurrent clients stream sync requests
// with a per-request deadline, a slice of the traffic goes through the
// async job API (Submit → Wait), and halfway through the run an admin
// rekey rotates the protection secrets without stopping traffic. Each
// model has its own batcher, scrubber and verified-fetch verifier; every
// attack round is detected and recovered.
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/rowhammer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

func compile(b *model.Bundle) (*qinfer.Engine, *core.Protector) {
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		panic(err)
	}
	return eng, core.Protect(b.QModel, core.DefaultConfig(8))
}

func main() {
	victim := model.Load(model.ResNet20sSpec())
	vicEng, vicProt := compile(victim)
	side := model.Load(model.TinySpec())
	sideEng, sideProt := compile(side)

	svc, err := serve.Open(
		serve.WithModel("resnet20", vicEng, vicProt,
			serve.WithScrub(5*time.Millisecond, 8)),
		serve.WithModel("tiny", sideEng, sideProt,
			serve.WithScrub(5*time.Millisecond, 8)),
	)
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	// The adversary prepared a profile offline on its own copy of the
	// model (white-box assumption) and mounts it through simulated DRAM.
	attacker := model.Load(model.ResNet20sSpec())
	acfg := attack.DefaultConfig(3)
	acfg.NumFlips = 9
	profile := attack.PBFA(attacker.QModel, attacker.Attack, acfg)
	dram := rowhammer.New(victim.QModel, rowhammer.DefaultGeometry(), 1)

	// Traffic: four clients streaming single-image requests against the
	// victim model, each with a 2s deadline; every eighth request rides
	// the async job API instead of the sync path. A fifth client streams
	// the tiny side model to show the routing front-end keeps the two
	// weight images, scrubbers and metrics fully independent.
	x, labels := victim.Test.Batch(0, 200)
	vol := tensor.Volume(x.Shape[1:])
	input := func(i int) *tensor.Tensor {
		t := tensor.New(x.Shape[1:]...)
		copy(t.Data, x.Data[i*vol:(i+1)*vol])
		return t
	}
	sx, _ := side.Test.Batch(0, 32)
	svol := tensor.Volume(sx.Shape[1:])
	sideInput := func(i int) *tensor.Tensor {
		t := tensor.New(sx.Shape[1:]...)
		copy(t.Data, sx.Data[(i%32)*svol:(i%32+1)*svol])
		return t
	}

	var correct, total, asyncJobs, sideServed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				req := serve.Request{Model: "resnet20", Input: input(i % 200)}
				var res serve.Result
				var err error
				if i%8 == 7 {
					var id serve.JobID
					if id, err = svc.Submit(ctx, req); err == nil {
						res, err = svc.Wait(ctx, id)
						mu.Lock()
						asyncJobs++
						mu.Unlock()
					}
				} else {
					res, err = svc.Infer(ctx, req)
				}
				cancel()
				if err != nil {
					return
				}
				mu.Lock()
				total++
				if res.Class == labels[i%200] {
					correct++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Infer(context.Background(),
				serve.Request{Model: "tiny", Input: sideInput(i)}); err != nil {
				return
			}
			mu.Lock()
			sideServed++
			mu.Unlock()
		}
	}()

	// Three attack rounds, 30ms apart, against the serving resnet20 —
	// with a live admin rekey between rounds two and three.
	for round := 1; round <= 3; round++ {
		time.Sleep(30 * time.Millisecond)
		svc.Inject("resnet20", func(m *quant.Model) {
			dram.MountProfile(profile.Addresses())
			dram.Refresh()
		})
		fmt.Printf("round %d: mounted %d flips against the live server\n",
			round, len(profile.Addresses()))
		if round == 2 {
			reports, _ := svc.Rekey("resnet20")
			fmt.Printf("admin rekey: model %s re-keyed live (pre-rekey sweep flagged %d, zeroed %d)\n",
				reports[0].Model, reports[0].Flagged, reports[0].Zeroed)
		}
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap, _ := svc.Snapshot("resnet20")
	mu.Lock()
	acc := float64(correct) / float64(total)
	mu.Unlock()
	fmt.Printf("\nserved %d resnet20 requests (%d async jobs) in %d batches (avg batch %.1f) — accuracy under attack %.1f%% (clean %s)\n",
		snap.Requests, asyncJobs, snap.Batches, snap.AvgBatch, 100*acc, victim.MustClean())
	fmt.Printf("side model served %d requests, untouched by the attack\n", sideServed)
	fmt.Printf("scrubber: %d cycles, flagged %d, zeroed %d weights; rekeys %d\n",
		snap.ScrubCycles, snap.ScrubFlagged, snap.ScrubZeroed, snap.Rekeys)
	fmt.Printf("verified fetch: %d cache hits, %d rescans, flagged %d\n",
		snap.VerifyHits, snap.VerifyScans, snap.VerifyFlagged)
	fmt.Printf("protector totals: %d scans, %d groups flagged, %d recovered, %d weights zeroed\n",
		snap.ProtectorScans, snap.GroupsFlagged, snap.GroupsRecovered, snap.WeightsZeroed)

	if flagged, _ := vicProt.DetectAndRecover(); len(flagged) == 0 {
		fmt.Println("final sweep: model clean — every attack round was recovered without stopping traffic")
	} else {
		fmt.Printf("final sweep flagged %d groups (now recovered)\n", len(flagged))
	}
	if flagged, _ := sideProt.DetectAndRecover(); len(flagged) == 0 {
		fmt.Println("side model: clean throughout (independent guard, scrubber and metrics)")
	}
}
