// Attack/defense: the paper's full evaluation loop on the trained
// ResNet-20 substitute — PBFA finds the 10 most damaging bits, accuracy
// collapses, RADAR detects the flipped groups and zero-out recovery
// restores most of the accuracy (Table III's story).
//
// The first run trains the model (~1-2 minutes); afterwards it loads from
// the checkpoint cache in testdata/models.
package main

import (
	"fmt"

	"radar"
	"radar/internal/attack"
	"radar/internal/model"
)

func main() {
	// The attacker profiles its own copy of the model (white-box
	// assumption: architecture + weights + a small surrogate dataset).
	atk := model.Load(model.ResNet20sSpec())
	cfg := attack.DefaultConfig(7)
	cfg.NumFlips = 10
	profile := attack.PBFA(atk.QModel, atk.Attack, cfg)
	fmt.Println("PBFA vulnerable-bit profile:")
	for i, f := range profile {
		fmt.Printf("  %2d. %-12s %4d → %4d\n", i+1, f.Addr, f.Before, f.After)
	}

	// The victim runs the same model, protected with G=2 (the scaled
	// equivalent of the paper's G=8 on the full-size ResNet-20).
	victim := model.Load(model.ResNet20sSpec())
	clean := model.Evaluate(victim.Net, victim.Test, 100)
	prot := radar.Protect(victim.QModel, radar.DefaultConfig(2))

	// Mount the profile on the victim's weights.
	for _, f := range profile {
		victim.QModel.FlipBit(f.Addr)
	}
	attacked := model.Evaluate(victim.Net, victim.Test, 100)

	// Run-time detection and recovery.
	flagged, zeroed := prot.DetectAndRecover()
	detected := prot.CountDetected(profile.Addresses(), flagged)
	recovered := model.Evaluate(victim.Net, victim.Test, 100)

	fmt.Printf("\ndetected %d/%d flips (%d groups flagged, %d weights zeroed)\n",
		detected, len(profile), len(flagged), zeroed)
	fmt.Printf("accuracy: clean %.2f%% → attacked %.2f%% → recovered %.2f%%\n",
		100*clean, 100*attacked, 100*recovered)
}
